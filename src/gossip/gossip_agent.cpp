#include "gossip/gossip_agent.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace ag::gossip {

GossipAgent::GossipAgent(sim::Simulator& sim, RoutingAdapter& adapter,
                         GossipParams params, sim::Rng rng)
    : sim_{sim},
      adapter_{adapter},
      params_{params},
      rng_{rng},
      nm_{[this](net::GroupId g, net::NodeId n, std::uint16_t v) {
        ++counters_.nm_updates_sent;
        adapter_.send_to_neighbor(n, NearestMemberMsg{g, v});
      }},
      round_timer_{sim, [this] { run_round(); }, sim::EventCategory::router} {}

void GossipAgent::start() {
  if (!params_.enabled) return;
  round_timer_.start(params_.round_interval, &rng_, params_.round_jitter);
}

void GossipAgent::reset() {
  round_timer_.stop();
  groups_.clear();
  nm_.clear();
  rounds_since_nm_refresh_ = 0;
}

GossipAgent::GroupState& GossipAgent::state_for(net::GroupId group) {
  auto& state = groups_[group];
  if (state == nullptr) state = std::make_unique<GroupState>(params_);
  return *state;
}

const LostTable* GossipAgent::lost_table(net::GroupId group) const {
  const auto* state = groups_.find(group);
  return state == nullptr ? nullptr : &(*state)->lost;
}
const HistoryTable* GossipAgent::history(net::GroupId group) const {
  const auto* state = groups_.find(group);
  return state == nullptr ? nullptr : &(*state)->history;
}
const MemberCache* GossipAgent::member_cache(net::GroupId group) const {
  const auto* state = groups_.find(group);
  return state == nullptr ? nullptr : &(*state)->cache;
}

// ------------------------------------------------------------- data path

void GossipAgent::on_multicast_data(const net::MulticastData& data, net::NodeId) {
  accept_data(data.group, data, /*via_gossip=*/false);
}

void GossipAgent::accept_data(net::GroupId group, const net::MulticastData& data,
                              bool via_gossip) {
  GroupState& gs = state_for(group);
  const ReceiveOutcome outcome = gs.lost.on_data(net::MsgId{data.origin, data.seq});
  if (outcome == ReceiveOutcome::duplicate) {
    ++counters_.duplicates;
    return;
  }
  gs.history.push(data);
  ++counters_.delivered_unique;
  if (via_gossip) {
    ++counters_.delivered_via_gossip;
    ++counters_.replies_useful;
  }
  if (deliver_) deliver_(data, via_gossip);
}

// ----------------------------------------------------------- observer API

void GossipAgent::on_tree_neighbor_added(net::GroupId group, net::NodeId neighbor,
                                         std::uint16_t member_distance_hint) {
  nm_.on_neighbor_added(group, neighbor, member_distance_hint);
}

void GossipAgent::on_tree_neighbor_removed(net::GroupId group, net::NodeId neighbor) {
  nm_.on_neighbor_removed(group, neighbor);
}

void GossipAgent::on_self_membership_changed(net::GroupId group, bool member) {
  nm_.on_self_membership(group, member);
  if (member) {
    state_for(group);  // allocate tables up front
  } else {
    // Dynamic membership: a departing member drops its per-group gossip
    // state, so a later rejoin starts cold instead of pulling the whole
    // gap it was unsubscribed for.
    groups_.erase(group);
  }
}

void GossipAgent::on_member_learned(net::GroupId group, net::NodeId member,
                                    std::uint8_t hops) {
  if (member == adapter_.self()) return;
  state_for(group).cache.observe(member, hops, sim_.now());
}

// ---------------------------------------------------------------- rounds

void GossipAgent::run_round() {
  if (params_.nm_refresh_rounds > 0 &&
      ++rounds_since_nm_refresh_ >= params_.nm_refresh_rounds) {
    rounds_since_nm_refresh_ = 0;
    nm_.republish_all();
  }
  const bool aging = params_.member_cache_ttl > sim::Duration::zero();
  groups_.for_each([&](net::GroupId group, std::unique_ptr<GroupState>& gs) {
    if (aging) gs->cache.expire_older_than(sim_.now() - params_.member_cache_ttl);
    if (!adapter_.is_member(group)) return;
    ++counters_.rounds;
    gossip_once(group, *gs);
  });
}

GossipMsg GossipAgent::build_message(net::GroupId group, GroupState& gs) const {
  GossipMsg msg;
  msg.group = group;
  msg.initiator = adapter_.self();
  msg.hops_walked = 0;
  msg.pull = params_.exchange_mode != ExchangeMode::push;
  if (msg.pull) {
    msg.lost = gs.lost.most_recent(params_.max_lost_in_message);
    msg.expected = gs.lost.expectations();
  }
  if (params_.exchange_mode != ExchangeMode::pull) {
    msg.pushed = gs.history.recent(params_.push_budget);
  }
  return msg;
}

void GossipAgent::gossip_once(net::GroupId group, GroupState& gs) {
  const bool prefer_anon = rng_.bernoulli(params_.p_anon);
  const bool have_cache = gs.cache.size() > 0;
  const bool have_tree = !adapter_.tree_neighbors(group).empty();

  if ((prefer_anon && have_tree) || (!have_cache && have_tree)) {
    GossipMsg msg = build_message(group, gs);
    start_anonymous_walk(group, std::move(msg));
    return;
  }
  if (have_cache) {
    GossipMsg msg = build_message(group, gs);
    msg.cached = true;
    const net::NodeId target = gs.cache.pick_random(rng_);
    if (!target.is_valid()) return;
    ++counters_.cached_initiated;
    gs.cache.note_gossiped(target, sim_.now());
    adapter_.unicast(target, std::move(msg));
  }
}

void GossipAgent::start_anonymous_walk(net::GroupId group, GossipMsg msg) {
  const net::NodeId hop = choose_hop(group, net::NodeId::invalid());
  if (!hop.is_valid()) return;
  ++counters_.walks_initiated;
  msg.hops_walked = 1;
  adapter_.send_to_neighbor(hop, std::move(msg));
}

net::NodeId GossipAgent::choose_hop(net::GroupId group, net::NodeId exclude) {
  std::vector<net::NodeId> hops = adapter_.tree_neighbors(group);
  std::erase(hops, exclude);
  if (hops.empty()) return net::NodeId::invalid();
  if (!params_.locality_bias || params_.locality_alpha == 0.0) {
    return hops[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(hops.size()) - 1))];
  }
  // Smaller nearest-member distance => larger weight (paper section 4.2).
  std::vector<double> weights;
  weights.reserve(hops.size());
  for (net::NodeId h : hops) {
    const std::uint16_t d = nm_.value_for(group, h);
    // Unknown subtrees keep a small but non-zero chance, preserving the
    // paper's "distant nodes occasionally" requirement.
    const double dist = d == NearestMemberTracker::kInfinity ? 16.0 : std::max<double>(d, 1.0);
    weights.push_back(1.0 / std::pow(dist, params_.locality_alpha));
  }
  return hops[rng_.weighted_index(weights)];
}

// ------------------------------------------------------------- reception

void GossipAgent::on_gossip_packet(const net::Packet& packet, net::NodeId from) {
  std::visit(net::overloaded{
                 [&](const GossipMsg& msg) {
                   if (msg.cached) {
                     // Unicast straight to us: act as the acceptor — unless
                     // we already left the group and a peer's stale member
                     // cache is still pointing at us (churn).
                     if (!adapter_.is_member(msg.group)) return;
                     ++counters_.walks_accepted;
                     handle_request(msg);
                   } else {
                     handle_walk(msg, from);
                   }
                 },
                 [&](const GossipReplyMsg& reply) {
                   // Drop replies that arrive after we left the group;
                   // rebuilding state for them would undo the departure.
                   if (adapter_.is_member(reply.group)) handle_reply(reply);
                 },
                 [&](const NearestMemberMsg& nm) {
                   nm_.on_update_received(nm.group, from, nm.distance_hops);
                 },
                 [&](const auto&) {},
             },
             packet.payload);
}

void GossipAgent::handle_walk(const GossipMsg& msg, net::NodeId from) {
  if (msg.initiator == adapter_.self()) return;  // walk looped back; drop
  // Remember the walk's reverse path so the reply needs no discovery.
  adapter_.route_hint(msg.initiator, from, msg.hops_walked);

  const bool member = adapter_.is_member(msg.group);
  if (member && rng_.bernoulli(params_.p_accept)) {
    ++counters_.walks_accepted;
    handle_request(msg);
    return;
  }
  if (msg.hops_walked >= params_.walk_ttl) {
    if (member) {
      ++counters_.walks_accepted;
      handle_request(msg);
    } else {
      ++counters_.walks_dropped;
    }
    return;
  }
  forward_walk(msg, from);
}

void GossipAgent::forward_walk(const GossipMsg& msg, net::NodeId from) {
  const net::NodeId next = choose_hop(msg.group, from);
  if (!next.is_valid()) {
    // Dead end: a member leaf must accept (paper: the walk ends at it).
    if (adapter_.is_member(msg.group)) {
      ++counters_.walks_accepted;
      handle_request(msg);
    } else {
      ++counters_.walks_dropped;
    }
    return;
  }
  GossipMsg fwd = msg;
  fwd.hops_walked++;
  ++counters_.walks_forwarded;
  adapter_.send_to_neighbor(next, std::move(fwd));
}

void GossipAgent::handle_request(const GossipMsg& msg) {
  if (msg.initiator == adapter_.self()) return;
  GroupState& gs = state_for(msg.group);
  ++counters_.requests_handled;

  // Push / push-pull: the message itself carries data for us.
  for (const net::MulticastData& d : msg.pushed) {
    ++counters_.replies_received;  // gossip-carried payload (goodput basis)
    accept_data(msg.group, d, /*via_gossip=*/true);
  }
  if (!msg.pull) {
    const std::uint16_t walk_hops =
        msg.hops_walked > 0 ? msg.hops_walked : adapter_.route_hops(msg.initiator);
    gs.cache.observe(msg.initiator, walk_hops, sim_.now());
    return;
  }

  // Pull mode (section 4.4): collect everything the initiator asked for
  // that we hold, then push messages past its expected sequence numbers.
  std::vector<net::MulticastData> found;
  for (const net::MsgId& id : msg.lost) {
    if (found.size() >= params_.reply_budget) break;
    if (const net::MulticastData* d = gs.history.find(id)) found.push_back(*d);
  }
  auto initiator_expected = [&msg](net::NodeId sender) -> std::uint32_t {
    for (const SenderExpectation& exp : msg.expected) {
      if (exp.sender == sender) return exp.expected_seq;
    }
    // The initiator does not even know this sender exists (it received
    // nothing from it yet): everything we hold is news to it.
    return 0;
  };
  for (const SenderExpectation& our_exp : gs.lost.expectations()) {
    if (found.size() >= params_.reply_budget) break;
    if (our_exp.sender == msg.initiator) continue;  // it has its own messages
    for (net::MulticastData d :
         gs.history.collect_from(our_exp.sender, initiator_expected(our_exp.sender),
                                 params_.reply_budget - found.size())) {
      const bool already = std::any_of(
          found.begin(), found.end(), [&](const net::MulticastData& f) {
            return f.origin == d.origin && f.seq == d.seq;
          });
      if (!already) found.push_back(d);
    }
  }

  // Update the member cache with the initiator: distance comes from the
  // walk length (anonymous) or the unicast route (cached).
  const std::uint16_t hops =
      msg.hops_walked > 0 ? msg.hops_walked : adapter_.route_hops(msg.initiator);
  gs.cache.observe(msg.initiator, hops, sim_.now());

  // Space replies out a little so a burst does not collide with itself.
  sim::Duration delay = sim::Duration::zero();
  for (const net::MulticastData& d : found) {
    ++counters_.replies_sent;
    GossipReplyMsg reply{msg.group, adapter_.self(), d};
    sim_.schedule_after(
        delay, [this, to = msg.initiator, reply] { adapter_.unicast(to, reply); },
        sim::EventCategory::router);
    delay = delay + params_.reply_spacing +
            sim::Duration::us(rng_.uniform_int(0, 2000));
  }
}

void GossipAgent::handle_reply(const GossipReplyMsg& reply) {
  ++counters_.replies_received;
  GroupState& gs = state_for(reply.group);
  const std::uint16_t hops = adapter_.route_hops(reply.responder);
  gs.cache.observe(reply.responder, hops, sim_.now());
  accept_data(reply.group, reply.data, /*via_gossip=*/true);
}

}  // namespace ag::gossip
