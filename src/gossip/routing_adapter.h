// The boundary between Anonymous Gossip and the multicast routing
// substrate. The paper stresses that AG works "on top of any of the
// tree-based and mesh-based protocols"; GossipAgent therefore depends only
// on these two interfaces, and MaodvRouter (or any other protocol)
// implements them.
#ifndef AG_GOSSIP_ROUTING_ADAPTER_H
#define AG_GOSSIP_ROUTING_ADAPTER_H

#include <cstdint>
#include <vector>

#include "net/data.h"
#include "net/ids.h"
#include "net/packet.h"

namespace ag::gossip {

// Services the gossip layer consumes from the routing protocol.
class RoutingAdapter {
 public:
  virtual ~RoutingAdapter() = default;

  [[nodiscard]] virtual net::NodeId self() const = 0;
  [[nodiscard]] virtual bool is_member(net::GroupId group) const = 0;
  [[nodiscard]] virtual bool on_tree(net::GroupId group) const = 0;
  // Activated multicast tree neighbors (the walk's candidate next hops).
  [[nodiscard]] virtual std::vector<net::NodeId> tree_neighbors(net::GroupId group) const = 0;

  // Routed unicast to an arbitrary node (cached gossip, gossip replies).
  virtual void unicast(net::NodeId dest, net::Payload payload) = 0;
  // One-hop unicast to a direct neighbor (walk forwarding, nearest-member).
  virtual void send_to_neighbor(net::NodeId neighbor, net::Payload payload) = 0;
  // Installs a route learned from a passing gossip walk so the reply can
  // be unicast without a fresh route discovery.
  virtual void route_hint(net::NodeId dest, net::NodeId via_neighbor, std::uint8_t hops) = 0;
  // Known distance in hops to `dest`; 0 when unknown.
  [[nodiscard]] virtual std::uint8_t route_hops(net::NodeId dest) const = 0;
};

// Events the routing protocol pushes into the gossip layer.
class RouterObserver {
 public:
  virtual ~RouterObserver() = default;

  // A unique (deduplicated) multicast data packet arrived via the
  // protocol's own distribution path.
  virtual void on_multicast_data(const net::MulticastData& data, net::NodeId from) = 0;
  // Activated tree link appeared/disappeared. `member_distance_hint` is 1
  // when the neighbor itself is known to be a group member, 0 if unknown.
  virtual void on_tree_neighbor_added(net::GroupId group, net::NodeId neighbor,
                                      std::uint16_t member_distance_hint) = 0;
  virtual void on_tree_neighbor_removed(net::GroupId group, net::NodeId neighbor) = 0;
  virtual void on_self_membership_changed(net::GroupId group, bool member) = 0;
  // A group member was learned from protocol traffic (e.g. a join RREP
  // answered by a member) — feeds the member cache "at no extra cost".
  virtual void on_member_learned(net::GroupId group, net::NodeId member,
                                 std::uint8_t hops) = 0;
  // A gossip-layer packet (walk, reply, nearest-member) addressed to us.
  virtual void on_gossip_packet(const net::Packet& packet, net::NodeId from) = 0;
};

}  // namespace ag::gossip

#endif  // AG_GOSSIP_ROUTING_ADAPTER_H
