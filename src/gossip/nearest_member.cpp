#include "gossip/nearest_member.h"

#include <algorithm>

namespace ag::gossip {

void NearestMemberTracker::on_neighbor_added(net::GroupId group, net::NodeId neighbor,
                                             std::uint16_t member_distance_hint) {
  GroupState& g = groups_[group];
  g.values[neighbor] = member_distance_hint == 0 ? kInfinity : member_distance_hint;
  g.last_advertised.erase(neighbor);  // force an initial MODIFY to the newcomer
  publish(group);
}

void NearestMemberTracker::on_neighbor_removed(net::GroupId group, net::NodeId neighbor) {
  GroupState* g = groups_.find(group);
  if (g == nullptr) return;
  g->values.erase(neighbor);
  g->last_advertised.erase(neighbor);
  publish(group);
}

void NearestMemberTracker::on_self_membership(net::GroupId group, bool member) {
  groups_[group].self_member = member;
  publish(group);
}

void NearestMemberTracker::on_update_received(net::GroupId group, net::NodeId from,
                                              std::uint16_t value) {
  GroupState& g = groups_[group];
  std::uint16_t* known = g.values.find(from);
  if (known == nullptr) return;  // not an activated hop (stale message)
  if (*known == value) return;
  *known = value;
  publish(group);
}

std::uint16_t NearestMemberTracker::value_for(net::GroupId group,
                                              net::NodeId neighbor) const {
  const GroupState* g = groups_.find(group);
  if (g == nullptr) return kInfinity;
  const std::uint16_t* value = g->values.find(neighbor);
  return value == nullptr ? kInfinity : *value;
}

std::uint16_t NearestMemberTracker::advertised_to(net::GroupId group,
                                                  net::NodeId exclude) const {
  const GroupState* g = groups_.find(group);
  if (g == nullptr) return kInfinity;
  if (g->self_member) return 1;  // this node itself is one hop from `exclude`
  std::uint16_t best = kInfinity;
  g->values.for_each([&](net::NodeId neighbor, const std::uint16_t& value) {
    if (neighbor == exclude) return;
    best = std::min(best, value);
  });
  return best == kInfinity ? kInfinity : static_cast<std::uint16_t>(best + 1);
}

void NearestMemberTracker::republish_all() {
  groups_.for_each([&](net::GroupId group, GroupState& state) {
    state.last_advertised.clear();
    publish(group);
  });
}

void NearestMemberTracker::publish(net::GroupId group) {
  GroupState* found = groups_.find(group);
  if (found == nullptr) return;
  GroupState& g = *found;
  g.values.for_each([&](net::NodeId neighbor, std::uint16_t&) {
    const std::uint16_t value = advertised_to(group, neighbor);
    auto [advertised, inserted] = g.last_advertised.try_emplace(neighbor, value);
    if (!inserted) {
      if (*advertised == value) return;  // unchanged: suppress (paper 4.2)
      *advertised = value;
    }
    send_(group, neighbor, value);
  });
}

}  // namespace ag::gossip
