#include "gossip/nearest_member.h"

#include <algorithm>

namespace ag::gossip {

void NearestMemberTracker::on_neighbor_added(net::GroupId group, net::NodeId neighbor,
                                             std::uint16_t member_distance_hint) {
  GroupState& g = groups_[group];
  g.values[neighbor] = member_distance_hint == 0 ? kInfinity : member_distance_hint;
  g.last_advertised.erase(neighbor);  // force an initial MODIFY to the newcomer
  publish(group);
}

void NearestMemberTracker::on_neighbor_removed(net::GroupId group, net::NodeId neighbor) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  it->second.values.erase(neighbor);
  it->second.last_advertised.erase(neighbor);
  publish(group);
}

void NearestMemberTracker::on_self_membership(net::GroupId group, bool member) {
  groups_[group].self_member = member;
  publish(group);
}

void NearestMemberTracker::on_update_received(net::GroupId group, net::NodeId from,
                                              std::uint16_t value) {
  GroupState& g = groups_[group];
  auto it = g.values.find(from);
  if (it == g.values.end()) return;  // not an activated hop (stale message)
  if (it->second == value) return;
  it->second = value;
  publish(group);
}

std::uint16_t NearestMemberTracker::value_for(net::GroupId group,
                                              net::NodeId neighbor) const {
  auto git = groups_.find(group);
  if (git == groups_.end()) return kInfinity;
  auto it = git->second.values.find(neighbor);
  return it == git->second.values.end() ? kInfinity : it->second;
}

std::uint16_t NearestMemberTracker::advertised_to(net::GroupId group,
                                                  net::NodeId exclude) const {
  auto git = groups_.find(group);
  if (git == groups_.end()) return kInfinity;
  const GroupState& g = git->second;
  if (g.self_member) return 1;  // this node itself is one hop from `exclude`
  std::uint16_t best = kInfinity;
  for (const auto& [neighbor, value] : g.values) {
    if (neighbor == exclude) continue;
    best = std::min(best, value);
  }
  return best == kInfinity ? kInfinity : static_cast<std::uint16_t>(best + 1);
}

void NearestMemberTracker::republish_all() {
  for (auto& [group, state] : groups_) {
    state.last_advertised.clear();
    publish(group);
  }
}

void NearestMemberTracker::publish(net::GroupId group) {
  auto git = groups_.find(group);
  if (git == groups_.end()) return;
  GroupState& g = git->second;
  for (const auto& [neighbor, unused] : g.values) {
    (void)unused;
    const std::uint16_t value = advertised_to(group, neighbor);
    auto [it, inserted] = g.last_advertised.try_emplace(neighbor, value);
    if (!inserted) {
      if (it->second == value) continue;  // unchanged: suppress (paper 4.2)
      it->second = value;
    }
    send_(group, neighbor, value);
  }
}

}  // namespace ag::gossip
