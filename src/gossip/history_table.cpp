#include "gossip/history_table.h"

#include <algorithm>

namespace ag::gossip {

void HistoryTable::push(const net::MulticastData& data) {
  const net::MsgId id{data.origin, data.seq};
  if (!by_id_.try_emplace(net::msg_key(id), data).second) return;
  order_.push_back(id);
  while (order_.size() > capacity_) {
    by_id_.erase(net::msg_key(order_.front()));
    order_.pop_front();
  }
}

const net::MulticastData* HistoryTable::find(const net::MsgId& id) const {
  return by_id_.find(net::msg_key(id));
}

std::vector<net::MulticastData> HistoryTable::recent(std::size_t max_count) const {
  std::vector<net::MulticastData> out;
  out.reserve(std::min(max_count, order_.size()));
  for (auto it = order_.rbegin(); it != order_.rend() && out.size() < max_count; ++it) {
    out.push_back(*by_id_.find(net::msg_key(*it)));
  }
  return out;
}

std::vector<net::MulticastData> HistoryTable::collect_from(net::NodeId origin,
                                                           std::uint32_t from_seq,
                                                           std::size_t max_count) const {
  std::vector<net::MulticastData> out;
  for (const net::MsgId& id : order_) {
    if (out.size() >= max_count) break;
    if (id.origin == origin && id.seq >= from_seq) {
      out.push_back(*by_id_.find(net::msg_key(id)));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const net::MulticastData& a, const net::MulticastData& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace ag::gossip
