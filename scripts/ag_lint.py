#!/usr/bin/env python3
"""ag-lint: repo-specific determinism / hot-path discipline linter.

Enforces the written-but-previously-unchecked rules of this simulator
(see ARCHITECTURE.md "Correctness tooling"):

  unordered    no std::unordered_map/set/multimap/multiset anywhere in
               src/ or bench/ — iteration order leaks into results (PR 4
               had to canonicalize it); use net::NodeTable / net::DenseMap
               or an ordered container.
  determinism  no rand()/srand()/std::random_device, no time()/clock()/
               gettimeofday()/clock_gettime(), and no std::chrono wall
               clocks in simulation code — all randomness flows from the
               per-run sim::RngFactory streams and all time from the sim
               clock. Harness-level wall-clock *measurement* must be
               annotated (see scale_smoke.cpp).
  rawalloc     no raw new/delete/malloc/free in the phy/mac hot path or
               in net/data_plane.* — per-packet allocation goes through
               the pooled PacketPtr path. (The pool itself is the
               allocator and carries in-tree allow annotations.)
  category     every sim::Simulator::schedule_at/schedule_after call,
               every make_unique<sim::Timer>(...) and every *timer_{...}
               member construction must pass an explicit
               sim::EventCategory (or forward a `category`/`category_`
               parameter) so the event-mix accounting never silently
               lumps new event types under "other".
  env          AG_* environment knobs are read in exactly one place,
               src/sim/env.h — getenv/setenv anywhere else in src/ or
               bench/ must be annotated (escape-hatch A/B benches) or
               moved behind an env.h helper.

Suppression (reason is mandatory):

  // ag-lint: allow(<rule>, <reason>)        this line or the next line
  // ag-lint: allow-file(<rule>, <reason>)   whole file

Engine: a comment/string-aware regex scanner by default. When python
libclang bindings are importable AND --engine=clang is requested, token
streams from libclang replace the hand-rolled comment stripper for
slightly better fidelity; the regex engine is the canonical CI gate
(runners do not install libclang), so both engines must flag the same
fixtures (asserted by --self-test).

Usage:
  ag_lint.py [--root DIR] [files...]   lint src/ + bench/ (or just files)
  ag_lint.py --self-test               run the fixture suite under
                                       tests/lint/fixtures and verify
                                       every rule fires (and that allow
                                       annotations suppress)

Exit codes: 0 clean, 1 findings (printed as file:line: [rule] message),
2 usage/internal error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

# --------------------------------------------------------------------------
# findings & annotations
# --------------------------------------------------------------------------

RULES = ("unordered", "determinism", "rawalloc", "category", "env")

ALLOW_RE = re.compile(
    r"ag-lint:\s*(allow|allow-file)\(\s*([a-z-]+)\s*(?:,\s*([^)]*\S)\s*)?\)"
)


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


class Annotations:
    """Parsed ag-lint allow annotations for one file."""

    def __init__(self) -> None:
        self.file_rules: set[str] = set()
        self.line_rules: dict[int, set[str]] = {}  # line -> rules allowed there
        self.errors: list[tuple[int, str]] = []

    def allows(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, set())


def parse_annotations(lines: list[str]) -> Annotations:
    ann = Annotations()
    for i, text in enumerate(lines, start=1):
        for m in ALLOW_RE.finditer(text):
            kind, rule, reason = m.group(1), m.group(2), m.group(3)
            if rule not in RULES:
                ann.errors.append((i, f"unknown rule {rule!r} in ag-lint annotation"))
                continue
            if not reason:
                ann.errors.append(
                    (i, f"ag-lint allow({rule}) missing a reason — say why")
                )
                continue
            if kind == "allow-file":
                ann.file_rules.add(rule)
            else:
                # An allow on its own (comment-only) line covers the next
                # line; an allow trailing code covers its own line.
                target = i + 1 if text.lstrip().startswith("//") else i
                ann.line_rules.setdefault(i, set()).add(rule)
                ann.line_rules.setdefault(target, set()).add(rule)
    return ann


# --------------------------------------------------------------------------
# comment/string stripping (the regex engine's tokenizer)
# --------------------------------------------------------------------------


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Returns lines with comments, string and char literals blanked out
    (replaced by spaces so columns/line numbers are preserved)."""
    out: list[str] = []
    in_block = False
    in_raw = False
    raw_terminator = ""
    for text in lines:
        buf: list[str] = []
        i, n = 0, len(text)
        while i < n:
            c = text[i]
            if in_block:
                if text.startswith("*/", i):
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
                continue
            if in_raw:
                end = text.find(raw_terminator, i)
                if end == -1:
                    buf.append(" " * (n - i))
                    i = n
                else:
                    skip = end + len(raw_terminator)
                    buf.append(" " * (skip - i))
                    i = skip
                    in_raw = False
                continue
            if text.startswith("//", i):
                buf.append(" " * (n - i))
                break
            if text.startswith("/*", i):
                in_block = True
                buf.append("  ")
                i += 2
                continue
            m = re.match(r'R"([^(]{0,16})\(', text[i:])
            if c == "R" and m:
                in_raw = True
                raw_terminator = ")" + m.group(1) + '"'
                buf.append(" " * m.end())
                i += m.end()
                continue
            if c in "\"'":
                quote = c
                j = i + 1
                while j < n:
                    if text[j] == "\\":
                        j += 2
                        continue
                    if text[j] == quote:
                        j += 1
                        break
                    j += 1
                buf.append(quote + " " * (j - i - 2) + quote if j - i >= 2 else c)
                i = j
                continue
            buf.append(c)
            i += 1
        out.append("".join(buf))
    return out


def balanced_span(code: list[str], line_idx: int, col: int, open_ch: str) -> str:
    """Returns the text of a balanced (...) or {...} starting at
    code[line_idx][col] == open_ch, spanning up to 40 lines."""
    close_ch = ")" if open_ch == "(" else "}"
    depth = 0
    parts: list[str] = []
    for li in range(line_idx, min(line_idx + 40, len(code))):
        text = code[li]
        start = col if li == line_idx else 0
        for ci in range(start, len(text)):
            ch = text[ci]
            parts.append(ch)
            if ch in "({[":
                depth += 1
            elif ch in ")}]":
                depth -= 1
                if depth == 0 and ch == close_ch:
                    return "".join(parts)
    return "".join(parts)  # unbalanced (truncated file): best effort


# --------------------------------------------------------------------------
# rules (regex engine)
# --------------------------------------------------------------------------

UNORDERED_RE = re.compile(r"\bstd\s*::\s*unordered_(map|set|multimap|multiset)\b")

DETERMINISM_RES = [
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device"),
    (re.compile(r"(?:\bstd\s*::\s*|(?<![\w.:>]))s?rand\s*\("), "rand()/srand()"),
    (
        re.compile(r"(?:\bstd\s*::\s*|(?<![\w.:>]))time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
        "time()",
    ),
    (re.compile(r"(?:\bstd\s*::\s*|(?<![\w.:>]))clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\b(clock_gettime|gettimeofday)\s*\("), "wall-clock syscall"),
    (
        re.compile(r"\bstd\s*::\s*chrono\s*::\s*(system|steady|high_resolution)_clock\b"),
        "std::chrono wall clock",
    ),
]

RAWALLOC_RES = [
    (re.compile(r"(?<!\w)new\b(?!\s*\()"), "raw new"),  # `new (place)` also new, see below
    (re.compile(r"(?<!\w)new\s*\("), "placement/raw new"),
    (re.compile(r"(?<![\w.:>=])delete\b"), "raw delete"),
    (re.compile(r"(?<![\w.:])(malloc|calloc|realloc|free)\s*\("), "C allocation"),
]

# `= delete;` (deleted members) and `= default;` are declarations, not
# allocation — drop them before the rawalloc patterns run.
DELETED_FN_RE = re.compile(r"=\s*delete\s*(;|,)")

SCHEDULE_RE = re.compile(r"\bschedule_(?:at|after)\s*(\()")
TIMER_MAKE_RE = re.compile(r"make_unique\s*<\s*(?:sim\s*::\s*)?Timer\s*>\s*(\()")
TIMER_MEMBER_RE = re.compile(r"\b\w*timer_?\s*(\{)")
CATEGORY_OK_RE = re.compile(r"EventCategory\s*::|(?<![\w.])category_?\b")

GETENV_RE = re.compile(
    r"(?:\bstd\s*::\s*|(?<![\w.:]))(getenv|setenv|unsetenv|putenv)\s*\("
)


def is_hot_path(rel: str) -> bool:
    parts = rel.replace("\\", "/").split("/")
    if "phy" in parts or "mac" in parts:
        return True
    return os.path.basename(rel).startswith("data_plane")


def is_env_home(rel: str) -> bool:
    return rel.replace("\\", "/").endswith("sim/env.h")


def lint_file(path: str, rel: str, raw_lines: list[str]) -> list[Finding]:
    ann = parse_annotations(raw_lines)
    code = strip_comments_and_strings(raw_lines)
    findings: list[Finding] = []
    for line, msg in ann.errors:
        # Annotation misuse is its own (non-suppressible) finding type.
        findings.append(Finding(path, line, "annotation", msg))

    def add(line: int, rule: str, message: str) -> None:
        if not ann.allows(rule, line):
            findings.append(Finding(path, line, rule, message))

    for i, text in enumerate(code, start=1):
        # unordered -----------------------------------------------------
        for m in UNORDERED_RE.finditer(text):
            add(
                i,
                "unordered",
                f"std::unordered_{m.group(1)}: iteration order leaks into "
                "results — use net::NodeTable/net::DenseMap or an ordered "
                "container (or annotate a reference backend)",
            )
        # determinism ---------------------------------------------------
        for pattern, what in DETERMINISM_RES:
            if pattern.search(text):
                add(
                    i,
                    "determinism",
                    f"{what}: simulation code draws randomness from "
                    "sim::RngFactory streams and time from the sim clock only",
                )
        # rawalloc ------------------------------------------------------
        if is_hot_path(rel):
            cleaned = DELETED_FN_RE.sub("         ", text)
            for pattern, what in RAWALLOC_RES:
                if pattern.search(cleaned):
                    add(
                        i,
                        "rawalloc",
                        f"{what} in the phy/mac hot path — allocate through "
                        "net::PacketPool / owned containers (pool internals "
                        "carry in-tree allow annotations)",
                    )
                    break  # one finding per line is enough
        # category ------------------------------------------------------
        for pattern, what in (
            (SCHEDULE_RE, "schedule call"),
            (TIMER_MAKE_RE, "Timer construction"),
            (TIMER_MEMBER_RE, "timer member construction"),
        ):
            for m in pattern.finditer(text):
                span = balanced_span(code, i - 1, m.start(1), m.group(1))
                if not CATEGORY_OK_RE.search(span):
                    add(
                        i,
                        "category",
                        f"{what} without an explicit sim::EventCategory — "
                        "pass one (or forward a `category` parameter) so "
                        "event-mix accounting stays meaningful",
                    )
        # env -----------------------------------------------------------
        if not is_env_home(rel):
            for m in GETENV_RE.finditer(text):
                add(
                    i,
                    "env",
                    f"{m.group(1)}() outside src/sim/env.h — AG_* knobs are "
                    "parsed in exactly one place; add a helper there or "
                    "annotate an A/B bench",
                )
    return findings


# --------------------------------------------------------------------------
# optional libclang refinement
# --------------------------------------------------------------------------


def lint_file_clang(path: str, rel: str, raw_lines: list[str]):
    """Token-level variant using libclang when available: identical rules,
    but comment/string classification comes from the real lexer. Returns
    None when libclang is unusable so the caller falls back to regex."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=["-std=c++20"])
    except Exception:
        return None
    # Rebuild per-line code text from non-comment, non-literal tokens and
    # reuse the regex rules on it — the value of libclang here is exact
    # comment/string stripping, not a second rule implementation.
    code_lines = [""] * len(raw_lines)
    for tok in tu.cursor.get_tokens():
        if tok.kind == cindex.TokenKind.COMMENT:
            continue
        if tok.kind == cindex.TokenKind.LITERAL and (
            tok.spelling.startswith('"') or tok.spelling.startswith("'")
        ):
            continue
        line = tok.location.line
        col = tok.location.column
        if 1 <= line <= len(code_lines):
            text = code_lines[line - 1]
            if len(text) < col - 1:
                text += " " * (col - 1 - len(text))
            code_lines[line - 1] = text + tok.spelling
    shadow = list(code_lines)

    # Temporarily substitute the tokenized text through the shared rules.
    global strip_comments_and_strings
    saved = strip_comments_and_strings
    strip_comments_and_strings = lambda _lines: shadow  # noqa: E731
    try:
        return lint_file(path, rel, raw_lines)
    finally:
        strip_comments_and_strings = saved


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

CXX_EXTS = (".cpp", ".cc", ".cxx", ".h", ".hpp")


def collect_files(root: str) -> list[str]:
    files: list[str] = []
    for sub in ("src", "bench"):
        base = os.path.join(root, sub)
        for dirpath, _dirs, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(CXX_EXTS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def lint_paths(root: str, paths: list[str], engine: str) -> list[Finding]:
    findings: list[Finding] = []
    for path in paths:
        rel = os.path.relpath(path, root)
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                raw_lines = f.read().splitlines()
        except OSError as e:
            print(f"ag-lint: cannot read {path}: {e}", file=sys.stderr)
            sys.exit(2)
        result = None
        if engine == "clang":
            result = lint_file_clang(path, rel, raw_lines)
            if result is None:
                print(
                    "ag-lint: libclang unavailable, falling back to regex engine",
                    file=sys.stderr,
                )
        if result is None:
            result = lint_file(path, rel, raw_lines)
        findings.extend(result)
    return findings


# --------------------------------------------------------------------------
# self-test over the fixture suite
# --------------------------------------------------------------------------

# fixture path (relative to tests/lint/fixtures) -> set of rules that MUST
# fire, exactly. Clean/suppressed fixtures expect the empty set.
FIXTURE_EXPECTATIONS = {
    "bad_unordered.cc": {"unordered"},
    "bad_determinism.cc": {"determinism"},
    "mac/bad_rawalloc.cc": {"rawalloc"},
    "bad_category.cc": {"category"},
    "bad_env.cc": {"env"},
    "allowed_suppressions.cc": set(),
    "mac/clean_hot_path.cc": set(),
    "bad_annotation_no_reason.cc": {"annotation", "unordered"},
}


def self_test(root: str, engine: str) -> int:
    fixtures = os.path.join(root, "tests", "lint", "fixtures")
    failures = 0
    for rel, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        path = os.path.join(fixtures, rel)
        if not os.path.exists(path):
            print(f"SELF-TEST FAIL: missing fixture {rel}")
            failures += 1
            continue
        with open(path, encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
        result = None
        if engine == "clang":
            result = lint_file_clang(path, rel, raw_lines)
        if result is None:
            result = lint_file(path, rel, raw_lines)
        fired = {f.rule for f in result}
        if fired != expected:
            print(
                f"SELF-TEST FAIL: {rel}: expected rules {sorted(expected)}, "
                f"got {sorted(fired)}"
            )
            for f in result:
                print("    " + f.render(fixtures))
            failures += 1
        else:
            print(f"self-test ok: {rel} -> {sorted(fired) or 'clean'}")
    # The live tree must be clean too — the self-test doubles as the gate
    # that the in-tree annotations actually suppress.
    live = lint_paths(root, collect_files(root), engine)
    if live:
        print(f"SELF-TEST FAIL: live tree has {len(live)} finding(s):")
        for f in live:
            print("    " + f.render(root))
        failures += 1
    else:
        print("self-test ok: live src/ + bench/ tree clean")
    if failures:
        print(f"{failures} self-test failure(s)")
        return 1
    print("ag-lint self-test passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="files to lint (default: src/ + bench/)")
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of scripts/)",
    )
    parser.add_argument(
        "--engine",
        choices=("regex", "clang"),
        default="regex",
        help="regex (canonical CI gate) or clang (libclang token stream, "
        "falls back to regex when bindings are missing)",
    )
    parser.add_argument("--self-test", action="store_true", help="run the fixture suite")
    args = parser.parse_args()

    root = os.path.abspath(args.root)
    if args.self_test:
        return self_test(root, args.engine)

    paths = [os.path.abspath(p) for p in args.files] or collect_files(root)
    findings = lint_paths(root, paths, args.engine)
    for f in sorted(findings, key=lambda f: (f.path, f.line)):
        print(f.render(root))
    if findings:
        print(f"ag-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
