#!/usr/bin/env python3
"""Renders BENCH_scale.json as a GitHub-flavored markdown table.

Used by the Release CI job to append a wall-clock + events/sec summary to
$GITHUB_STEP_SUMMARY, so perf regressions are visible on the PR page
without downloading the artifact.

Usage: scale_summary.py BENCH_scale.json
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: scale_summary.py BENCH_scale.json", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        # CI must not fail the build over a missing/truncated bench file
        # (the wall-clock budget may have tripped); say so in the summary.
        print(f"### Scaling smoke\n\n_no usable {sys.argv[1]}: {e}_")
        return 0

    seeds = data.get("seeds", "?")
    index = json.dumps(data.get("spatial_index", "?"))
    dense = json.dumps(data.get("dense_tables", "?"))
    batched = json.dumps(data.get("batched_backoff", "?"))
    print("### Scaling smoke (`scale_smoke`)\n")
    print(
        f"seeds: {seeds} · spatial index: {index} · dense tables: {dense}"
        f" · batched backoff: {batched}\n"
    )
    print(
        "| nodes | wall (s) | sim events | events/sec "
        "| events elided | effective ev/sec | per-protocol delivery |"
    )
    print(
        "|------:|---------:|-----------:|-----------:"
        "|--------------:|-----------------:|:----------------------|"
    )
    points = data.get("points", [])
    for point in points:
        protocols = ", ".join(
            f"{s.get('name', '?')}={s.get('delivery_ratio', 0):.2f}"
            for s in point.get("series", [])
        )
        elided = point.get("mac_slots_elided", 0) + point.get("mac_difs_elided", 0)
        print(
            f"| {point.get('nodes', '?')} "
            f"| {point.get('wall_clock_s', 0):.2f} "
            f"| {point.get('sim_events', 0):,} "
            f"| {point.get('events_per_sec', 0):,.0f} "
            f"| {elided:,} "
            f"| {point.get('effective_events_per_sec', point.get('events_per_sec', 0)):,.0f} "
            f"| {protocols} |"
        )

    # Event-mix table: share of executed events per category, so elision
    # targets (and regressions) are visible straight from the job page.
    categories = []
    for point in points:
        for name in point.get("event_mix", {}):
            if name not in categories:
                categories.append(name)
    if categories:
        print("\n#### Event mix (executed events per category)\n")
        header = " | ".join(categories)
        print(f"| nodes | {header} |")
        print("|------:|" + "|".join("---:" for _ in categories) + "|")
        for point in points:
            mix = point.get("event_mix", {})
            total = max(point.get("sim_events", 0), 1)
            cells = []
            for name in categories:
                executed = mix.get(name, {}).get("executed", 0)
                cells.append(f"{executed:,} ({100.0 * executed / total:.0f}%)")
            print(f"| {point.get('nodes', '?')} | " + " | ".join(cells) + " |")
    return 0


if __name__ == "__main__":
    sys.exit(main())
