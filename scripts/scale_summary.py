#!/usr/bin/env python3
"""Renders BENCH_scale.json (or BENCH_dtn/BENCH_adversary.json) as a
markdown table.

Used by the Release CI job to append a wall-clock + events/sec summary to
$GITHUB_STEP_SUMMARY, so perf regressions are visible on the PR page
without downloading the artifact. BENCH_dtn.json shares the same points/
series shape (each point labels a grid cell instead of a node count), so
one renderer covers both; the "users served" column shows the session
layer's served/eligible ratio when a series carries session metrics and
an em-dash placeholder when it does not (every pre-custody BENCH file);
the "trust iso/fp" column does the same for the adversary axis' isolation
and false-positive counts (BENCH_adversary.json only).

Runs under `if: always()`, so it must exit 0 and print something
readable for every degraded input: missing file, truncated JSON, a
non-object payload, points that are missing keys (the wall-clock budget
can kill scale_smoke mid-sweep), or points without event_mix (older
BENCH files predate the per-category accounting).

Usage: scale_summary.py BENCH_scale.json
       scale_summary.py BENCH_dtn.json
"""
import json
import sys


def _num(value, default=0):
    """Returns value as a number, or `default` when absent/malformed."""
    return value if isinstance(value, (int, float)) and not isinstance(value, bool) else default


def _series_of(point):
    series = point.get("series", [])
    if not isinstance(series, list):
        return []
    return [s for s in series if isinstance(s, dict)]


def _fmt_protocols(point):
    parts = [
        f"{s.get('name', '?')}={_num(s.get('delivery_ratio')):.2f}"
        for s in _series_of(point)
    ]
    return ", ".join(parts) if parts else "_n/a_"


def _fmt_users_served(point):
    """Per-protocol users-served ratio, or a placeholder when the point
    carries no session metrics (every pre-custody BENCH file)."""
    parts = [
        f"{s.get('name', '?')}={_num(s.get('users_served_ratio')):.2f}"
        for s in _series_of(point)
        if "users_served_ratio" in s
    ]
    return ", ".join(parts) if parts else "—"


def _fmt_trust(point):
    """Per-protocol isolation/false-positive counts, or a placeholder
    when the point predates the adversary axis (every BENCH file other
    than BENCH_adversary.json)."""
    parts = [
        f"{s.get('name', '?')}={_num(s.get('trust_isolations')):.1f}"
        f"/{_num(s.get('trust_false_positives')):.1f}"
        for s in _series_of(point)
        if "trust_isolations" in s
    ]
    return ", ".join(parts) if parts else "—"


def _point_label(point):
    """scale points are labeled by node count; dtn points carry an
    explicit grid-cell label."""
    return point.get("label", point.get("nodes", "?"))


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: scale_summary.py BENCH_scale.json", file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1], encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        # CI must not fail the build over a missing/truncated bench file
        # (the wall-clock budget may have tripped); say so in the summary.
        print(f"### Scaling smoke\n\n_no usable {sys.argv[1]}: {e}_")
        return 0
    if not isinstance(data, dict):
        print(f"### Scaling smoke\n\n_unexpected payload in {sys.argv[1]}: "
              f"{type(data).__name__} instead of an object_")
        return 0

    experiment = data.get("experiment", "scale_smoke")
    if experiment == "dtn":
        title = "Custody tier × user sessions (`figure_dtn`)"
    elif experiment == "adversary":
        title = "Adversary axis × trust isolation (`figure_adversary`)"
    else:
        title = f"Scaling smoke (`{experiment}`)"
    seeds = data.get("seeds", "?")
    print(f"### {title}\n")
    if experiment == "dtn":
        print(f"seeds: {seeds} · users/node: {data.get('sessions_per_node', '?')}\n")
    elif experiment == "adversary":
        print(f"seeds: {seeds}\n")
    else:
        index = json.dumps(data.get("spatial_index", "?"))
        dense = json.dumps(data.get("dense_tables", "?"))
        batched = json.dumps(data.get("batched_backoff", "?"))
        batched_phy = json.dumps(data.get("batched_phy", "?"))
        print(
            f"seeds: {seeds} · spatial index: {index} · dense tables: {dense}"
            f" · batched backoff: {batched} · batched phy: {batched_phy}\n"
        )
    # Sharded-driver accounting: the "sharding" object exists only when a
    # sharded run degraded (shards exhausted their retries); healthy and
    # pre-shard BENCH files render the placeholder.
    sharding = data.get("sharding")
    if isinstance(sharding, dict):
        print(
            f"sharded driver: {int(_num(sharding.get('shards')))} shards · "
            f"{int(_num(sharding.get('retried')))} retried · "
            f"{int(_num(sharding.get('failed')))} failed\n"
        )
    else:
        print("sharded driver: —\n")
    print(
        "| point | sim (s) | wall (s) | sim events | events/sec "
        "| events elided | effective ev/sec | per-protocol delivery "
        "| users served | trust iso/fp |"
    )
    print(
        "|:------|--------:|---------:|-----------:|-----------:"
        "|--------------:|-----------------:|:----------------------"
        "|:-------------|:-------------|"
    )
    points = data.get("points", [])
    if not isinstance(points, list):
        points = []
    points = [p for p in points if isinstance(p, dict)]
    if not points:
        # Placeholder row: the budget tripped before the first point (or
        # the schema changed) — keep the table well-formed either way.
        print("| _no points recorded_ | — | — | — | — | — | — | — | — | — |")
    for point in points:
        # MAC slot/DIFS elision plus the phy receptions the batched
        # delivery engine resolved without their own event (elided
        # outright or coalesced into a group sweep).
        elided = (
            _num(point.get("mac_slots_elided"))
            + _num(point.get("mac_difs_elided"))
            + _num(point.get("phy_rx_elided"))
            + _num(point.get("phy_rx_coalesced"))
        )
        effective = _num(
            point.get("effective_events_per_sec"), _num(point.get("events_per_sec"))
        )
        # Simulated seconds per point (scale_smoke caps node-seconds, so
        # huge points run shorter); absent from dtn/older BENCH files.
        sim_s = point.get("sim_duration_s")
        sim_cell = f"{_num(sim_s):g}" if isinstance(sim_s, (int, float)) else "—"
        print(
            f"| {_point_label(point)} "
            f"| {sim_cell} "
            f"| {_num(point.get('wall_clock_s')):.2f} "
            f"| {_num(point.get('sim_events')):,} "
            f"| {_num(point.get('events_per_sec')):,.0f} "
            f"| {elided:,} "
            f"| {effective:,.0f} "
            f"| {_fmt_protocols(point)} "
            f"| {_fmt_users_served(point)} "
            f"| {_fmt_trust(point)} |"
        )

    # Event-mix table: share of executed events per category, so elision
    # targets (and regressions) are visible straight from the job page.
    # Older/partial BENCH files have no event_mix — skip with a note
    # instead of asserting the full schema.
    categories = []
    for point in points:
        mix = point.get("event_mix")
        if not isinstance(mix, dict):
            continue
        for name in mix:
            if name not in categories:
                categories.append(name)
    if categories:
        print("\n#### Event mix (executed events per category)\n")
        header = " | ".join(categories)
        print(f"| point | {header} |")
        print("|:------|" + "|".join("---:" for _ in categories) + "|")
        for point in points:
            mix = point.get("event_mix")
            if not isinstance(mix, dict):
                mix = {}
            total = max(int(_num(point.get("sim_events"))), 1)
            cells = []
            for name in categories:
                entry = mix.get(name)
                executed = int(_num(entry.get("executed"))) if isinstance(entry, dict) else 0
                cells.append(f"{executed:,} ({100.0 * executed / total:.0f}%)")
            print(f"| {point.get('nodes', '?')} | " + " | ".join(cells) + " |")
    elif points:
        print("\n_event_mix absent from every point (pre-PR-5 BENCH file?) — "
              "per-category table skipped_")
    return 0


if __name__ == "__main__":
    sys.exit(main())
